// Command paperbench regenerates every table and figure of the paper
// reproduction and writes them as text (stdout) and CSV (results/).
//
//	paperbench                  # all experiments, full scale (minutes)
//	paperbench -scale small     # quicker, smaller grids
//	paperbench -exp fig5,fig8   # a subset
//	paperbench -list            # enumerate experiments
//
// Simulation results persist under <out>/.simcache by default, so a rerun
// (or a second experiment subset sharing runs with the first) skips
// completed simulations. Failed experiments are reported on stderr and the
// process exits non-zero, but the remaining experiments still run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gpusched/internal/harness"
	"gpusched/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// resolveCacheDir maps the -cache flag to a directory: "auto" places the
// cache inside the CSV output directory (no caching when CSVs are off),
// "off"/"" disables it, anything else is used verbatim.
func resolveCacheDir(cache, outDir string) string {
	switch cache {
	case "off", "":
		return ""
	case "auto":
		if outDir == "" {
			return ""
		}
		return filepath.Join(outDir, ".simcache")
	default:
		return cache
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag   = fs.String("exp", "all", "comma-separated experiment ids (or 'all')")
		scale     = fs.String("scale", "full", "problem scale: "+sim.ScaleFlagHelp)
		outDir    = fs.String("out", "results", "directory for CSV output ('' = none)")
		cacheFlag = fs.String("cache", "auto", "simulation cache dir: auto = <out>/.simcache, off = disabled")
		cores     = fs.Int("cores", 0, "override SM count (0 = default 15)")
		list      = fs.Bool("list", false, "list experiments and exit")
		progress  = fs.Bool("v", false, "log each simulation run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	scaleVal, err := sim.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	opt := harness.Options{
		Scale:    scaleVal,
		Cores:    *cores,
		CacheDir: resolveCacheDir(*cacheFlag, *outDir),
	}
	if *progress {
		opt.Progress = stderr
	}

	var selected []harness.Experiment
	if *expFlag == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	h := harness.New(opt)
	var failures []string
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(h)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", e.ID, err))
			fmt.Fprintf(stderr, "error: %s: %v\n", e.ID, err)
			continue
		}
		table.Render(stdout)
		fmt.Fprintf(stdout, "  (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if *outDir != "" {
			if err := writeCSV(*outDir, e.ID, table); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "\n%d of %d experiments failed:\n", len(failures), len(selected))
		for _, f := range failures {
			fmt.Fprintf(stderr, "  %s\n", f)
		}
		return 1
	}
	return 0
}

func writeCSV(dir, id string, table *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	table.CSV(f)
	return f.Close()
}
