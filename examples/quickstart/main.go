// Quickstart: define a custom kernel with the builder API, run it on the
// default simulated GPU under two CTA schedulers, and read the stats.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gpusched"
)

func main() {
	// A toy streaming kernel: 120 CTAs of 256 threads; every warp loads
	// two vectors, multiply-adds, and stores — a miniature saxpy.
	const (
		ctas     = 120
		threads  = 256
		warps    = threads / 32
		regionB  = 1 << 28
		regionC  = 2 << 28
		laneSpan = 32 * 4 // bytes one warp covers per coalesced access
	)
	saxpy, err := gpusched.NewKernelBuilder("saxpy", ctas, threads).
		Regs(16).
		Program(func(ctaID, warp int, p *gpusched.ProgramBuilder) {
			base := uint32((ctaID*warps + warp) * laneSpan)
			for i := 0; i < 8; i++ {
				off := base + uint32(i*ctas*warps*laneSpan)
				p.LoadGlobal(1, off)
				p.LoadGlobal(2, regionB+off)
				p.FMul(3, 1, 2)
				p.FAdd(4, 3, 4)
				p.StoreGlobal(4, regionC+off)
			}
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := gpusched.DefaultConfig() // 15 Fermi-class SMs, GTO warps

	base, err := gpusched.Run(cfg, gpusched.Baseline(), saxpy)
	if err != nil {
		log.Fatal(err)
	}
	// RunContext honors cancellation: a deadline (or Ctrl-C wiring) stops
	// the cycle loop mid-simulation instead of running to completion.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	lcs, err := gpusched.RunContext(ctx, cfg, gpusched.LCS(), saxpy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel %s: %d CTAs x %d threads\n", saxpy.Name(), saxpy.CTAs(), saxpy.ThreadsPerCTA())
	fmt.Printf("baseline: %7d cycles, IPC %.2f, L1 hit %.1f%%, DRAM row hit %.1f%%\n",
		base.Cycles, base.IPC, base.L1HitRate*100, base.DRAMRowHitRate*100)
	fmt.Printf("LCS:      %7d cycles, IPC %.2f (%.2fx), per-core CTA limits %v\n",
		lcs.Cycles, lcs.IPC, lcs.Speedup(base), lcs.CTALimits)

	// The built-in suite is one call away.
	fmt.Println("\nbuilt-in workloads:")
	for _, w := range gpusched.Workloads() {
		fmt.Printf("  %-14s %-9s modeled on %s\n", w.Name, w.Class, w.ModeledOn)
	}
}
