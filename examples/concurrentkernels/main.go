// Mixed concurrent kernel execution: a memory-bound kernel that LCS says
// cannot use full occupancy shares every SM with a compute-bound kernel
// that fills the leftover thread, register, and CTA-slot resources.
// Compared against running the kernels back to back (sequential) and
// against splitting the SMs between them (spatial CKE).
package main

import (
	"fmt"
	"log"
	"sort"

	"gpusched"
)

func main() {
	memK, ok := gpusched.WorkloadByName("spmv")
	if !ok {
		log.Fatal("spmv missing")
	}
	cmpK, ok := gpusched.WorkloadByName("blackscholes")
	if !ok {
		log.Fatal("blackscholes missing")
	}
	cfg := gpusched.DefaultConfig()
	a := memK.Kernel(gpusched.SizeSmall)
	b := cmpK.Kernel(gpusched.SizeSmall)

	// Phase 1: profile the memory-bound kernel alone; AdaptiveLCS decides
	// how many of its CTAs per SM are actually useful.
	profile, err := gpusched.Run(cfg, gpusched.AdaptiveLCS(), a)
	if err != nil {
		log.Fatal(err)
	}
	nOpt := lowQuartile(profile.CTALimits)
	fmt.Printf("profile: %s wants only %d CTAs/SM (per-core decisions %v)\n\n",
		a.Name(), nOpt, profile.CTALimits)

	// Phase 2: run the pair under the three execution modes.
	seq, err := gpusched.Run(cfg, gpusched.Sequential(), a, b)
	if err != nil {
		log.Fatal(err)
	}
	spa, err := gpusched.Run(cfg, gpusched.SpatialCKE(0), a, b)
	if err != nil {
		log.Fatal(err)
	}
	mix, err := gpusched.Run(cfg, gpusched.MixedCKE(nOpt), a, b)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, r gpusched.Result) {
		fmt.Printf("%-28s %8d cycles  %.3fx", name, r.Cycles, r.Speedup(seq))
		for _, k := range r.Kernels {
			fmt.Printf("  [%s done @%d]", k.Name, k.DoneCycle)
		}
		fmt.Println()
	}
	fmt.Printf("running %s (%d CTAs) + %s (%d CTAs):\n", a.Name(), a.CTAs(), b.Name(), b.CTAs())
	show("sequential (no CKE)", seq)
	show("spatial CKE (split SMs)", spa)
	show(fmt.Sprintf("mixed CKE (A capped at %d)", nOpt), mix)
}

// lowQuartile returns the 25th-percentile positive limit: a conservative
// consensus of the per-core LCS decisions.
func lowQuartile(limits []int) int {
	var vs []int
	for _, v := range limits {
		if v > 0 {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 1
	}
	sort.Ints(vs)
	return vs[len(vs)/4]
}
