// Timeline tracing: watch a scheduling decision happen over time. The
// traced run samples IPC, occupancy, and memory rates every epoch; under
// AdaptiveLCS the occupancy staircase (8 -> decided limit) and the IPC
// recovery are directly visible, and the CSV drops into any plotting tool.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"gpusched"
)

func main() {
	w, ok := gpusched.WorkloadByName("spmv")
	if !ok {
		log.Fatal("spmv missing")
	}
	cfg := gpusched.DefaultConfig()
	const epoch = 2048

	for _, sched := range []gpusched.Scheduler{gpusched.Baseline(), gpusched.AdaptiveLCS()} {
		res, tl, err := gpusched.RunTraced(cfg, sched, epoch, w.Kernel(gpusched.SizeSmall))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d cycles, IPC %.2f, mean resident CTAs %.1f\n",
			sched.Name(), res.Cycles, res.IPC, tl.MeanResident())
		fmt.Println("  cycle     IPC   resident  L1miss  (bar = IPC)")
		for i, s := range tl.Samples {
			if i%4 != 0 { // print every 4th epoch
				continue
			}
			fmt.Printf("  %7d  %5.2f  %8d  %5.1f%%  %s\n",
				s.Cycle, s.IPC, s.ResidentCTAs, s.L1MissRate*100,
				strings.Repeat("#", int(s.IPC*10+0.5)))
		}
		name := "timeline_" + sched.Name() + ".csv"
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := tl.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("  full timeline -> %s\n\n", name)
	}
}
