// CTA throttling on a cache-sensitive sparse kernel: reproduce the paper's
// core observation — running *fewer* thread blocks per SM than the hardware
// allows can be much faster — and watch LCS find a limit automatically.
//
// The spmv workload gives each CTA a private 4 KiB gather window. At the
// occupancy-maximal 8 CTAs/SM, the resident windows total 32 KiB against a
// 16 KiB L1: every CTA thrashes every other CTA's window. Two resident CTAs
// fit; six are poison.
package main

import (
	"fmt"
	"log"

	"gpusched"
)

func main() {
	w, ok := gpusched.WorkloadByName("spmv")
	if !ok {
		log.Fatal("spmv missing from suite")
	}
	cfg := gpusched.DefaultConfig()

	fmt.Println("static CTA-limit sweep (the oracle view):")
	fmt.Printf("  %-7s %-9s %-7s %-8s %-10s\n", "limit", "cycles", "IPC", "L1 hit", "load lat")
	var maxCycles, bestCycles uint64
	bestLim := 0
	for lim := 1; lim <= 8; lim++ {
		res, err := gpusched.Run(cfg, gpusched.StaticLimit(lim), w.Kernel(gpusched.SizeSmall))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7d %-9d %-7.2f %-8s %-10.0f\n",
			lim, res.Cycles, res.IPC, fmt.Sprintf("%.1f%%", res.L1HitRate*100), res.AvgMemLatency)
		if bestCycles == 0 || res.Cycles < bestCycles {
			bestCycles, bestLim = res.Cycles, lim
		}
		maxCycles = res.Cycles
	}
	fmt.Printf("  -> best at %d CTAs/SM: %.2fx over max occupancy\n\n",
		bestLim, float64(maxCycles)/float64(bestCycles))

	lcs, err := gpusched.Run(cfg, gpusched.LCS(), w.Kernel(gpusched.SizeSmall))
	if err != nil {
		log.Fatal(err)
	}
	ad, err := gpusched.Run(cfg, gpusched.AdaptiveLCS(), w.Kernel(gpusched.SizeSmall))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LCS (one-shot issue-histogram decision):\n  %d cycles (%.2fx), limits %v\n",
		lcs.Cycles, float64(maxCycles)/float64(lcs.Cycles), lcs.CTALimits)
	fmt.Printf("AdaptiveLCS (plus rate-guarded descent):\n  %d cycles (%.2fx), limits %v\n",
		ad.Cycles, float64(maxCycles)/float64(ad.Cycles), ad.CTALimits)
	fmt.Println("\nBoth throttle lazily: no CTA is ever killed, slots just stop refilling.")
}
