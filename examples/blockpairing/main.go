// Block CTA scheduling on a stencil: consecutive CTAs read overlapping rows
// of the same image, so dispatching them as pairs to one SM (BCS) — and
// advancing the pair in lockstep with the block-aware warp scheduler
// (BAWS) — turns the overlap into same-core L1/MSHR hits and cuts DRAM
// traffic.
package main

import (
	"fmt"
	"log"

	"gpusched"
)

func run(cfg gpusched.Config, sched gpusched.Scheduler, k gpusched.Kernel) gpusched.Result {
	res, err := gpusched.Run(cfg, sched, k)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	w, ok := gpusched.WorkloadByName("stencil")
	if !ok {
		log.Fatal("stencil missing from suite")
	}
	k := w.Kernel(gpusched.SizeSmall)

	gto := gpusched.DefaultConfig() // GTO warp scheduler
	baws := gto
	baws.WarpPolicy = gpusched.WarpBAWS

	base := run(gto, gpusched.Baseline(), k)
	gang := run(gto, gpusched.BCS(2), k)  // pairs co-located, GTO serializes them
	lock := run(baws, gpusched.BCS(2), k) // pairs co-located AND in lockstep
	wide := run(baws, gpusched.BCS(4), k) // wider gangs

	show := func(name string, r gpusched.Result) {
		fmt.Printf("%-22s %8d cycles  %.3fx  L1 hit+merge %5.1f%%  DRAM reads %d\n",
			name, r.Cycles, r.Speedup(base), (r.L1HitRate+r.L1MergeRate)*100, r.DRAMReads)
	}
	fmt.Printf("stencil: CTA i reads rows i..i+2; CTAs i and i+1 share 2 of 3 rows\n\n")
	show("baseline (RR+GTO)", base)
	show("BCS pairs + GTO", gang)
	show("BCS pairs + BAWS", lock)
	show("BCS gangs of 4 + BAWS", wide)
	fmt.Println("\nThe gang alone helps (co-location dedups fetches in one L1);")
	fmt.Println("BAWS adds the lockstep that makes the shared lines still-resident.")
}
